//! The batch-vs-tuple differential lattice.
//!
//! The vectorized batch engine (`ts_exec::Engine::Batch`) and the
//! original tuple-at-a-time Volcano engine answer every query on the
//! same substrate, so they cross-check each other cell for cell: the
//! same 60-query × nine-method × three-rank-scheme grid that pins the
//! method-equivalence matrix runs once per engine, and every cell —
//! each method's `(tid, score)` sequence in emission order — must be
//! identical between the two. Both engines must also reproduce the
//! pinned FNV matrix digest, so neither can drift even in lockstep.

use topology_search::prelude::*;
use ts_core::TopologyId;
use ts_exec::{set_engine, Engine};

/// SplitMix64 — the same deterministic workload RNG as the
/// method-equivalence harness, so both tests replay one query sequence.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a over a result matrix (identical to the method-equivalence
/// accumulator, so the pinned constant carries over verbatim).
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// The pinned method-matrix digest — the same constant as
/// `method_equivalence.rs`. Both engines must reproduce it.
const MATRIX_DIGEST: u64 = 0x3e9a_bf87_2299_f467;

struct Harness {
    biozon: ts_biozon::Biozon,
    graph: ts_graph::DataGraph,
    schema: ts_graph::SchemaGraph,
    catalog: Catalog,
}

fn harness(seed: u64, scale: f64, l: usize, threshold: u64) -> Harness {
    let mut cfg = ts_biozon::BiozonConfig::default().scaled(scale);
    cfg.seed = seed;
    let biozon = biozon::generate(&cfg);
    let graph = graph::DataGraph::from_db(&biozon.db).expect("generator is consistent");
    let schema = graph::SchemaGraph::from_db(&biozon.db);
    let ids = &biozon.ids;
    let pairs = vec![
        EsPair::new(ids.protein, ids.dna),
        EsPair::new(ids.protein, ids.unigene),
        EsPair::new(ids.protein, ids.interaction),
        EsPair::new(ids.dna, ids.unigene),
        EsPair::new(ids.dna, ids.interaction),
        EsPair::new(ids.unigene, ids.interaction),
    ];
    let opts = ComputeOptions { es_pairs: Some(pairs), ..ComputeOptions::with_l(l) };
    let (mut catalog, _) = compute_catalog(&biozon.db, &graph, &schema, &opts);
    prune_catalog(&mut catalog, ts_core::PruneOptions { threshold, max_pruned: 32 });
    score_catalog(&mut catalog, &biozon::domain_scorer(&biozon.ids));
    Harness { biozon, graph, schema, catalog }
}

/// The same schema-appropriate random constraint as the
/// method-equivalence harness.
fn random_predicate(es: u16, ids: &ts_biozon::SchemaIds, rng: &mut Rng) -> Predicate {
    if es == ids.dna {
        match rng.below(3) {
            0 => Predicate::True,
            1 => Predicate::eq(1, "mRNA"),
            _ => Predicate::eq(1, "genomic"),
        }
    } else {
        match rng.below(4) {
            0 => Predicate::True,
            1 => biozon::selectivity_predicate(biozon::Selectivity::Selective),
            2 => biozon::selectivity_predicate(biozon::Selectivity::Medium),
            _ => biozon::selectivity_predicate(biozon::Selectivity::Unselective),
        }
    }
}

/// One engine's full pass over the grid: every cell's emission-order
/// `(tid, score-bits)` sequence, plus the running matrix digest.
fn run_grid(
    ctx: &QueryContext<'_>,
    ids: &ts_biozon::SchemaIds,
) -> (Vec<Vec<(TopologyId, u64)>>, u64) {
    let espairs = [
        (ids.protein, ids.dna),
        (ids.protein, ids.unigene),
        (ids.protein, ids.interaction),
        (ids.dna, ids.unigene),
        (ids.dna, ids.interaction),
        (ids.unigene, ids.interaction),
    ];
    let ks = [1usize, 2, 3, 5, 10, 1_000];

    let mut rng = Rng(0xB10_0B0E);
    let mut digest = Digest::new();
    let mut cells = Vec::new();
    for _ in 0..20 {
        let (es1, es2) = espairs[rng.below(espairs.len())];
        let con1 = random_predicate(es1, ids, &mut rng);
        let con2 = random_predicate(es2, ids, &mut rng);
        let k = ks[rng.below(ks.len())];
        for scheme in RankScheme::all() {
            let q = TopologyQuery::new(es1, con1.clone(), es2, con2.clone(), 2)
                .with_k(k)
                .with_scheme(scheme);
            for (mi, m) in Method::all().into_iter().enumerate() {
                let got = m.eval(ctx, &q);
                digest.u64(mi as u64);
                digest.u64(got.topologies.len() as u64);
                let mut cell = Vec::with_capacity(got.topologies.len());
                for &(tid, score) in &got.topologies {
                    digest.u64(tid as u64);
                    digest.u64(score.to_bits());
                    cell.push((tid, score.to_bits()));
                }
                cells.push(cell);
            }
        }
    }
    (cells, digest.0)
}

#[test]
fn batch_and_tuple_engines_agree_cell_for_cell_on_the_method_matrix() {
    let h = harness(1, 0.12, 2, 3);
    let ids = &h.biozon.ids;
    let ctx =
        QueryContext { db: &h.biozon.db, graph: &h.graph, schema: &h.schema, catalog: &h.catalog };

    set_engine(Engine::Tuple);
    let (tuple_cells, tuple_digest) = run_grid(&ctx, ids);
    set_engine(Engine::Batch);
    let (batch_cells, batch_digest) = run_grid(&ctx, ids);

    assert_eq!(tuple_cells.len(), batch_cells.len(), "both engines ran the same grid");
    assert_eq!(tuple_cells.len(), 20 * 3 * Method::all().len());
    for (i, (t, b)) in tuple_cells.iter().zip(&batch_cells).enumerate() {
        assert_eq!(
            t, b,
            "cell {i}: the batch engine emitted a different (tid, score) sequence than tuple"
        );
    }

    // Neither engine may drift, even in lockstep: both digests must
    // equal the constant pinned in method_equivalence.rs.
    assert_eq!(
        tuple_digest, MATRIX_DIGEST,
        "tuple engine diverged from the pinned method-matrix digest"
    );
    assert_eq!(
        batch_digest, MATRIX_DIGEST,
        "batch engine diverged from the pinned method-matrix digest"
    );
}
