//! Cross-crate invariants of the topology catalog, checked on generated
//! databases across several seeds. These are the properties that make
//! the Fast-Top equivalence proof of §4 go through.

use topology_search::prelude::*;
use ts_core::compute::path_sig_of_graph;
use ts_core::PruneOptions;
use ts_graph::canonical_code;

fn build(seed: u64) -> (ts_biozon::Biozon, ts_graph::DataGraph, ts_graph::SchemaGraph, Catalog) {
    let biozon = biozon::generate(&biozon::BiozonConfig::default().scaled(0.1));
    let mut cfg = biozon.config.clone();
    cfg.seed = seed;
    let biozon = biozon::generate(&cfg);
    let graph = graph::DataGraph::from_db(&biozon.db).expect("consistent");
    let schema = graph::SchemaGraph::from_db(&biozon.db);
    let pairs = vec![
        EsPair::new(biozon.ids.protein, biozon.ids.dna),
        EsPair::new(biozon.ids.protein, biozon.ids.interaction),
        EsPair::new(biozon.ids.dna, biozon.ids.unigene),
    ];
    let opts = ComputeOptions { es_pairs: Some(pairs), ..ComputeOptions::with_l(3) };
    let (mut catalog, _) = compute_catalog(&biozon.db, &graph, &schema, &opts);
    prune_catalog(&mut catalog, PruneOptions { threshold: 10, max_pruned: 32 });
    (biozon, graph, schema, catalog)
}

#[test]
fn frequencies_equal_alltops_row_counts() {
    for seed in [1u64, 7, 99] {
        let (_b, _g, _s, cat) = build(seed);
        let mut counts = std::collections::HashMap::new();
        for r in cat.alltops.rows() {
            *counts.entry(r.get(2).as_int() as u32).or_insert(0u64) += 1;
        }
        for m in cat.metas() {
            assert_eq!(m.freq, counts.get(&m.id).copied().unwrap_or(0), "seed {seed} tid {}", m.id);
        }
    }
}

#[test]
fn lefttops_is_alltops_minus_pruned() {
    for seed in [1u64, 7] {
        let (_b, _g, _s, cat) = build(seed);
        let pruned: std::collections::HashSet<u32> =
            cat.metas().iter().filter(|m| m.pruned).map(|m| m.id).collect();
        assert!(!pruned.is_empty(), "seed {seed}: expect something pruned at threshold 10");
        let expected: usize =
            cat.alltops.rows().filter(|r| !pruned.contains(&(r.as_int(2) as u32))).count();
        assert_eq!(cat.lefttops.len(), expected, "seed {seed}");
        for r in cat.lefttops.rows() {
            assert!(!pruned.contains(&(r.get(2).as_int() as u32)));
        }
    }
}

#[test]
fn exception_rows_are_exactly_multi_class_pairs_with_the_pruned_path() {
    let (_b, _g, _s, cat) = build(7);
    // Recompute expectations from the pair records (the ground truth).
    let pruned: Vec<_> = cat.metas().iter().filter(|m| m.pruned).collect();
    let mut expected = 0usize;
    for p in cat.pairs() {
        for m in &pruned {
            if m.espair != p.espair {
                continue;
            }
            let sig_id = cat.sig_id(m.path_sig.as_ref().expect("path-shaped")).expect("interned");
            if p.sigs.contains(&sig_id) && !p.topos.contains(&m.id) {
                expected += 1;
                assert!(
                    cat.excp_contains(p.e1, p.e2, m.id),
                    "pair ({}, {}) missing from ExcpTops for tid {}",
                    p.e1,
                    p.e2,
                    m.id
                );
            }
        }
    }
    assert_eq!(cat.excptops.len(), expected);
}

#[test]
fn topology_codes_are_consistent_with_graphs() {
    let (_b, _g, _s, cat) = build(1);
    for m in cat.metas() {
        assert_eq!(canonical_code(&m.graph), m.code, "tid {}", m.id);
        assert!(m.graph.is_connected(), "topology graphs are connected");
        // Path-shaped detection is consistent with the graph.
        let recomputed = path_sig_of_graph(&m.graph, m.espair);
        assert_eq!(recomputed, m.path_sig, "tid {}", m.id);
    }
}

#[test]
fn pair_topologies_reference_valid_ids_and_are_sorted() {
    let (_b, _g, _s, cat) = build(99);
    for p in cat.pairs() {
        assert!(!p.topos.is_empty(), "a connected pair has at least one topology");
        let mut sorted = p.topos.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, p.topos);
        for &tid in p.topos {
            let m = cat.meta(tid);
            assert_eq!(m.espair, p.espair);
        }
    }
}

#[test]
fn csr_offsets_are_monotone_and_terminal() {
    for seed in [1u64, 7, 99] {
        let (_b, _g, _s, cat) = build(seed);
        let offs = cat.pair_offsets();
        assert_eq!(
            offs.len(),
            cat.pair_count() + 1,
            "seed {seed}: one offset entry per pair + sentinel"
        );
        assert_eq!((offs[0].topos, offs[0].sigs), (0, 0), "seed {seed}: zero sentinel");
        for w in offs.windows(2) {
            assert!(w[0].topos <= w[1].topos, "seed {seed}: topo offsets monotone");
            assert!(w[0].sigs <= w[1].sigs, "seed {seed}: sig offsets monotone");
        }
        let last = offs[offs.len() - 1];
        assert_eq!(last.topos as usize, cat.pair_topo_buffer().len(), "seed {seed}: terminal");
        assert_eq!(last.sigs as usize, cat.pair_sig_buffer().len(), "seed {seed}: terminal");
        // Views reassemble the buffers exactly: concatenating every
        // pair's slices walks each shared buffer front to back.
        let topo_total: usize = cat.pairs().map(|p| p.topos.len()).sum();
        let sig_total: usize = cat.pairs().map(|p| p.sigs.len()).sum();
        assert_eq!(topo_total, cat.pair_topo_buffer().len());
        assert_eq!(sig_total, cat.pair_sig_buffer().len());
    }
}

#[test]
fn csr_interned_ids_are_in_range() {
    let (_b, _g, _s, cat) = build(7);
    for &tid in cat.pair_topo_buffer() {
        assert!((tid as usize) < cat.topology_count(), "tid {tid} out of range");
    }
    for &sig_id in cat.pair_sig_buffer() {
        assert!((sig_id as usize) < cat.sig_count(), "sig id {sig_id} out of range");
    }
    for m in cat.metas() {
        assert!((m.code_id as usize) < cat.code_count());
        assert_eq!(cat.code(m.code_id), &m.code, "code interning round-trips");
    }
}

#[test]
fn lefttops_rows_are_a_subset_of_alltops_rows() {
    for seed in [1u64, 7] {
        let (_b, _g, _s, cat) = build(seed);
        let all: std::collections::HashSet<(i64, i64, i64)> =
            cat.alltops.rows().map(|r| (r.as_int(0), r.as_int(1), r.as_int(2))).collect();
        assert!(cat.lefttops.len() <= cat.alltops.len());
        for r in cat.lefttops.rows() {
            let row = (r.get(0).as_int(), r.get(1).as_int(), r.get(2).as_int());
            assert!(all.contains(&row), "seed {seed}: LeftTops row {row:?} not in AllTops");
        }
    }
}

#[test]
fn pairs_are_sorted_and_unique_by_key() {
    let (_b, _g, _s, cat) = build(1);
    let keys: Vec<_> = cat.pairs().map(|p| p.key()).collect();
    for w in keys.windows(2) {
        assert!(
            w[0] < w[1],
            "pair keys strictly increasing by (espair, e1, e2): {:?} !< {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn space_report_accounts_every_byte() {
    let (_b, _g, _s, cat) = build(7);
    let report = cat.space_report();
    assert!(!report.is_empty());
    for (espair, row) in &report {
        assert!(row.alltops_bytes > 0, "{espair:?}");
        assert!(
            row.lefttops_bytes <= row.alltops_bytes,
            "LeftTops can never exceed AllTops for {espair:?}"
        );
        // The paper's Table 1 headline: pruning shrinks storage.
        assert!(row.ratio() <= 1.0 + 1e-9);
    }
}

#[test]
fn catalog_build_is_deterministic_across_parallelism() {
    let biozon = biozon::generate(&biozon::BiozonConfig::default().scaled(0.08));
    let graph = graph::DataGraph::from_db(&biozon.db).expect("consistent");
    let schema = graph::SchemaGraph::from_db(&biozon.db);
    let pairs = vec![EsPair::new(biozon.ids.protein, biozon.ids.dna)];
    let serial = ComputeOptions { es_pairs: Some(pairs.clone()), ..ComputeOptions::with_l(3) };
    let parallel =
        ComputeOptions { es_pairs: Some(pairs), parallel: true, ..ComputeOptions::with_l(3) };
    let (c1, _) = compute_catalog(&biozon.db, &graph, &schema, &serial);
    let (c2, _) = compute_catalog(&biozon.db, &graph, &schema, &parallel);
    assert_eq!(c1.topology_count(), c2.topology_count());
    assert_eq!(c1.alltops.len(), c2.alltops.len());
    for (a, b) in c1.metas().iter().zip(c2.metas().iter()) {
        assert_eq!(a.code, b.code);
        assert_eq!(a.freq, b.freq);
    }
}
