//! The nine-method differential harness.
//!
//! All nine evaluation strategies of §6.1 answer the same question —
//! the (top-k) l-topology result of a 2-query — on the same substrate,
//! which makes them natural cross-checks for each other: like CVC4SY's
//! divide-and-conquer strategies, no single method is trusted until the
//! independent ones agree on the same benchmarks. This harness drives
//! seeded randomized workloads (entity-set pair × predicate pair × k ×
//! ranking scheme) through every `Method` and asserts:
//!
//! * the unranked methods (`SQL`, `Full-Top`, `Fast-Top`) return the
//!   same `tid_set()`;
//! * the ranked methods return the same top-k **prefix modulo score
//!   ties**: position-for-position equal scores, and within each tie
//!   group a set of topologies drawn from the full score class (equal
//!   to the reference group whenever the class is not truncated at k);
//! * for all three `RankScheme`s.
//!
//! This is the safety net under the catalog's CSR storage rewrite: an
//! off-by-one in the offset table or a mis-merged buffer shows up here
//! as two strategies disagreeing, long before a paper-shape benchmark
//! would notice.

use std::collections::HashSet;

use topology_search::prelude::*;
use ts_core::{PruneOptions, TopologyId};

/// SplitMix64 — deterministic workload RNG, so every run replays the
/// same query sequence and failures reproduce.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a accumulator over the full result matrix. The nine methods
/// agreeing with *each other* still leaves room for all nine to drift
/// together (say, a storage bug that loses the same rows from every
/// plan); pinning the matrix digest catches collective drift against
/// the expectations checked in before and after the columnar-store
/// rewrite.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// The pinned digest of the 60-query × nine-method × three-rank-scheme
/// matrix below (every method's `(tid, score)` sequence, in emission
/// order). Must be byte-for-byte stable across storage rewrites; update
/// it only when the *workload or scoring* changes intentionally, never
/// to paper over a storage-layer diff.
const MATRIX_DIGEST: u64 = 0x3e9a_bf87_2299_f467;

struct Harness {
    biozon: ts_biozon::Biozon,
    graph: ts_graph::DataGraph,
    schema: ts_graph::SchemaGraph,
    catalog: Catalog,
}

fn harness(seed: u64, scale: f64, l: usize, threshold: u64) -> Harness {
    let mut cfg = ts_biozon::BiozonConfig::default().scaled(scale);
    cfg.seed = seed;
    let biozon = biozon::generate(&cfg);
    let graph = graph::DataGraph::from_db(&biozon.db).expect("generator is consistent");
    let schema = graph::SchemaGraph::from_db(&biozon.db);
    let ids = &biozon.ids;
    let pairs = vec![
        EsPair::new(ids.protein, ids.dna),
        EsPair::new(ids.protein, ids.unigene),
        EsPair::new(ids.protein, ids.interaction),
        EsPair::new(ids.dna, ids.unigene),
        EsPair::new(ids.dna, ids.interaction),
        EsPair::new(ids.unigene, ids.interaction),
    ];
    let opts = ComputeOptions { es_pairs: Some(pairs), ..ComputeOptions::with_l(l) };
    let (mut catalog, _) = compute_catalog(&biozon.db, &graph, &schema, &opts);
    prune_catalog(&mut catalog, PruneOptions { threshold, max_pruned: 32 });
    score_catalog(&mut catalog, &biozon::domain_scorer(&biozon.ids));
    Harness { biozon, graph, schema, catalog }
}

/// A random constraint appropriate for the entity set's schema: DNA has
/// a `type` column, the other sets carry a `desc` column with planted
/// selectivity keywords.
fn random_predicate(es: u16, ids: &ts_biozon::SchemaIds, rng: &mut Rng) -> Predicate {
    if es == ids.dna {
        match rng.below(3) {
            0 => Predicate::True,
            1 => Predicate::eq(1, "mRNA"),
            _ => Predicate::eq(1, "genomic"),
        }
    } else {
        match rng.below(4) {
            0 => Predicate::True,
            1 => biozon::selectivity_predicate(biozon::Selectivity::Selective),
            2 => biozon::selectivity_predicate(biozon::Selectivity::Medium),
            _ => biozon::selectivity_predicate(biozon::Selectivity::Unselective),
        }
    }
}

/// Assert a ranked method's output is the reference ranking's top-k
/// prefix modulo score ties. `full` is the complete (un-truncated)
/// ranked result; within a tie group the method may return any members
/// of the score class, but a class that fits inside the prefix must be
/// returned in full.
fn assert_topk_prefix(
    label: &str,
    got: &[(TopologyId, f64)],
    full: &[(TopologyId, f64)],
    k: usize,
) {
    let n = k.min(full.len());
    assert_eq!(got.len(), n, "{label}: expected {n} results, got {}", got.len());
    for (i, ((gt, gs), (_, fs))) in got.iter().zip(full).enumerate() {
        assert!(gs == fs, "{label}: position {i} score {gs} (tid {gt}) != reference score {fs}");
    }
    let mut i = 0;
    while i < n {
        let s = full[i].1;
        let mut j = i;
        while j < n && full[j].1 == s {
            j += 1;
        }
        // The full score class (including members past the k cutoff).
        let class: HashSet<TopologyId> =
            full.iter().filter(|&&(_, fs)| fs == s).map(|&(t, _)| t).collect();
        let got_group: HashSet<TopologyId> = got[i..j].iter().map(|&(t, _)| t).collect();
        assert_eq!(got_group.len(), j - i, "{label}: duplicate tids in tie group at {i}");
        assert!(
            got_group.is_subset(&class),
            "{label}: tie group at score {s} returned tids outside the score class: {got_group:?} ⊄ {class:?}"
        );
        i = j;
    }
}

#[test]
fn nine_methods_agree_on_randomized_workloads() {
    let h = harness(1, 0.12, 2, 3);
    let ids = &h.biozon.ids;
    let ctx =
        QueryContext { db: &h.biozon.db, graph: &h.graph, schema: &h.schema, catalog: &h.catalog };
    assert!(
        h.catalog.metas().iter().any(|m| m.pruned),
        "threshold must actually prune something, or the Fast methods are trivially Full"
    );

    let espairs = [
        (ids.protein, ids.dna),
        (ids.protein, ids.unigene),
        (ids.protein, ids.interaction),
        (ids.dna, ids.unigene),
        (ids.dna, ids.interaction),
        (ids.unigene, ids.interaction),
    ];
    let ks = [1usize, 2, 3, 5, 10, 1_000];

    let mut rng = Rng(0xB10_0B0E);
    let mut queries = 0usize;
    let mut nonempty = 0usize;
    let mut digest = Digest::new();
    for qi in 0..20 {
        let (es1, es2) = espairs[rng.below(espairs.len())];
        let con1 = random_predicate(es1, ids, &mut rng);
        let con2 = random_predicate(es2, ids, &mut rng);
        let k = ks[rng.below(ks.len())];
        for scheme in RankScheme::all() {
            let q = TopologyQuery::new(es1, con1.clone(), es2, con2.clone(), 2)
                .with_k(k)
                .with_scheme(scheme);
            queries += 1;

            // Ground truth: the complete ranked result (k beyond any
            // topology count), plus Full-Top's unranked set.
            let full_ranked = Method::FullTopK.eval(&ctx, &q.clone().with_k(1_000_000));
            let reference = Method::FullTop.eval(&ctx, &q);
            let ref_set = reference.tid_set();
            assert_eq!(
                full_ranked.tid_set(),
                ref_set,
                "query {qi}/{scheme}: ranked ground truth covers a different tid set"
            );
            if !ref_set.is_empty() {
                nonempty += 1;
            }

            for (mi, m) in Method::all().into_iter().enumerate() {
                let got = m.eval(&ctx, &q);
                digest.u64(mi as u64);
                digest.u64(got.topologies.len() as u64);
                for &(tid, score) in &got.topologies {
                    digest.u64(tid as u64);
                    digest.u64(score.to_bits());
                }
                if m.is_topk() {
                    assert_topk_prefix(
                        &format!("query {qi} ({es1}-{es2}, k={k}, {scheme}, {})", m.name()),
                        &got.topologies,
                        &full_ranked.topologies,
                        k,
                    );
                } else {
                    assert_eq!(
                        got.tid_set(),
                        ref_set,
                        "query {qi} ({es1}-{es2}, {scheme}): {} disagrees with Full-Top",
                        m.name()
                    );
                }
            }
        }
    }
    assert!(queries >= 50, "harness must exercise at least 50 random queries, ran {queries}");
    assert!(
        nonempty >= queries / 4,
        "too many degenerate (empty-result) queries ({nonempty}/{queries} non-empty) — workload lost its teeth"
    );
    // The post-refactor guard: the whole matrix, byte for byte. A catalog
    // built on columnar tables must reproduce the expectations recorded
    // on the row-major store (run with `-- --nocapture` to read the
    // computed value when an intentional workload change re-pins it).
    println!("method-equivalence matrix digest: {:#018x}", digest.0);
    assert_eq!(
        digest.0, MATRIX_DIGEST,
        "the 60-query x nine-method x three-scheme matrix diverged from the checked expectations"
    );
}

#[test]
fn nine_methods_agree_across_seeds_without_pruning() {
    // A second, smaller sweep with pruning disabled (threshold u64::MAX):
    // LeftTops == AllTops, so any disagreement isolates the methods
    // themselves rather than the pruning/exception machinery.
    for seed in [7u64, 23] {
        let h = harness(seed, 0.08, 2, u64::MAX);
        let ids = &h.biozon.ids;
        let ctx = QueryContext {
            db: &h.biozon.db,
            graph: &h.graph,
            schema: &h.schema,
            catalog: &h.catalog,
        };
        let mut rng = Rng(seed);
        for qi in 0..5 {
            let (es1, es2) = [(ids.protein, ids.dna), (ids.dna, ids.unigene)][rng.below(2)];
            let q = TopologyQuery::new(
                es1,
                random_predicate(es1, ids, &mut rng),
                es2,
                random_predicate(es2, ids, &mut rng),
                2,
            )
            .with_k(4)
            .with_scheme(RankScheme::Domain);
            let full_ranked = Method::FullTopK.eval(&ctx, &q.clone().with_k(1_000_000));
            let reference = Method::FullTop.eval(&ctx, &q);
            for m in Method::all() {
                let got = m.eval(&ctx, &q);
                if m.is_topk() {
                    assert_topk_prefix(
                        &format!("seed {seed} query {qi} {}", m.name()),
                        &got.topologies,
                        &full_ranked.topologies,
                        q.k,
                    );
                } else {
                    assert_eq!(
                        got.tid_set(),
                        reference.tid_set(),
                        "seed {seed} query {qi} {}",
                        m.name()
                    );
                }
            }
        }
    }
}
