//! The fast-hasher determinism guard.
//!
//! PR 5 swept an FxHash-style hasher (`ts_storage::hash`) through every
//! hot-path map. A fixed, non-random hasher can silently *freeze* an
//! iteration-order dependence into the output — exactly the bug class
//! the old randomly-seeded SipHash would have surfaced as flakiness. The
//! contract is therefore: **no catalog byte may depend on which hasher
//! the build ran under.** This test rebuilds the medium catalog with
//! `std`'s randomly-seeded SipHash in the worker-side memo maps
//! (`compute_catalog_with_hasher::<RandomState>`) and asserts byte
//! identity with the production fast-hash build — heap size, CSR pair
//! store, metadata, materialized tables, and an FNV digest of the whole
//! structure — serial and across worker-thread counts. Every run uses a
//! fresh random SipHash seed, so any order dependence shows up as a
//! flaky diff here long before it could corrupt the pinned
//! method-equivalence matrix.

use std::collections::hash_map::RandomState;

use topology_search::prelude::*;
use ts_core::compute_catalog_with_hasher;

fn assert_catalogs_identical(c1: &Catalog, c2: &Catalog) {
    assert_eq!(c1.l, c2.l);
    assert_eq!(c1.topology_count(), c2.topology_count());
    assert_eq!(c1.sig_count(), c2.sig_count());
    assert_eq!(c1.code_count(), c2.code_count());
    for (m1, m2) in c1.metas().iter().zip(c2.metas().iter()) {
        assert_eq!(m1.id, m2.id);
        assert_eq!(m1.espair, m2.espair);
        assert_eq!(m1.code, m2.code);
        assert_eq!(m1.code_id, m2.code_id);
        assert_eq!(m1.freq, m2.freq);
        assert_eq!(m1.path_sig, m2.path_sig);
        assert_eq!(m1.graph.labels, m2.graph.labels);
        assert_eq!(m1.graph.edges, m2.graph.edges);
    }
    assert_eq!(c1.pair_count(), c2.pair_count());
    for (p1, p2) in c1.pairs().zip(c2.pairs()) {
        assert_eq!((p1.espair, p1.e1, p1.e2), (p2.espair, p2.e1, p2.e2));
        assert_eq!(p1.topos, p2.topos);
        assert_eq!(p1.sigs, p2.sigs);
    }
    assert_eq!(c1.pair_offsets(), c2.pair_offsets());
    for (t1, t2) in [(&c1.alltops, &c2.alltops), (&c1.lefttops, &c2.lefttops)] {
        assert_eq!(t1.len(), t2.len());
        for (r1, r2) in t1.rows().zip(t2.rows()) {
            assert_eq!(r1, r2);
        }
        assert_eq!(t1.heap_size(), t2.heap_size());
    }
    assert_eq!(c1.heap_size(), c2.heap_size(), "byte footprint must not depend on the hasher");
}

/// FNV-1a digest of the catalog's observable structure: pair store
/// (keys, offsets, both shared buffers), metadata codes, and heap size.
/// One number that moves if *anything* the hasher could reorder moved.
fn catalog_digest(c: &Catalog) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for p in c.pairs() {
        eat(p.espair.from as u64);
        eat(p.espair.to as u64);
        eat(p.e1 as u64);
        eat(p.e2 as u64);
        for &t in p.topos {
            eat(t as u64);
        }
        for &s in p.sigs {
            eat(s as u64);
        }
    }
    for m in c.metas() {
        eat(m.id as u64);
        eat(m.code_id as u64);
        eat(m.freq);
        for &w in &m.code.0 {
            eat(w as u64);
        }
    }
    eat(c.heap_size() as u64);
    h
}

fn medium() -> (ts_biozon::Biozon, ts_graph::DataGraph, ts_graph::SchemaGraph) {
    let biozon = biozon::generate(&biozon::BiozonConfig::default().scaled(0.25));
    let graph = graph::DataGraph::from_db(&biozon.db).expect("generator is consistent");
    let schema = graph::SchemaGraph::from_db(&biozon.db);
    (biozon, graph, schema)
}

#[test]
fn sip_and_fast_hashers_build_identical_medium_catalogs() {
    let (biozon, graph, schema) = medium();
    let opts = ComputeOptions::with_l(3);

    let (c_fast, s_fast) = compute_catalog(&biozon.db, &graph, &schema, &opts);
    let (c_sip, s_sip) =
        compute_catalog_with_hasher::<RandomState>(&biozon.db, &graph, &schema, &opts);

    assert_catalogs_identical(&c_fast, &c_sip);
    assert_eq!(catalog_digest(&c_fast), catalog_digest(&c_sip));

    // The logical work is identical too — including the signature hash
    // budget, which counts interner probes (one per pair-class), not
    // hasher internals.
    assert_eq!(s_fast.pairs, s_sip.pairs);
    assert_eq!(s_fast.paths, s_sip.paths);
    assert_eq!(s_fast.topologies, s_sip.topologies);
    assert_eq!(s_fast.sig_hashes, s_sip.sig_hashes);
    assert!(s_fast.sig_hashes > 0, "the build must report its signature hash budget");
    assert!(
        s_fast.sig_hashes <= s_fast.paths + s_fast.pairs,
        "sig hashing must stay bounded by one probe per (pair, class): {} probes for {} paths / {} pairs",
        s_fast.sig_hashes,
        s_fast.paths,
        s_fast.pairs
    );
    assert_eq!(s_fast.canon_hits + s_fast.canon_misses, s_sip.canon_hits + s_sip.canon_misses);
}

#[test]
fn sip_hasher_parallel_matches_fast_serial_across_thread_counts() {
    // The merge must erase scheduler *and* hasher at the same time:
    // SipHash-memo workers on 1/2/4 threads against the fast-hash serial
    // reference.
    let (biozon, graph, schema) = medium();
    let (c_ref, _) = compute_catalog(&biozon.db, &graph, &schema, &ComputeOptions::with_l(3));
    let digest_ref = catalog_digest(&c_ref);
    for threads in [1usize, 2, 4] {
        let opts = ComputeOptions {
            parallel: true,
            min_parallel_sources: 1,
            max_threads: threads,
            ..ComputeOptions::with_l(3)
        };
        let (c, _) = compute_catalog_with_hasher::<RandomState>(&biozon.db, &graph, &schema, &opts);
        assert_catalogs_identical(&c_ref, &c);
        assert_eq!(digest_ref, catalog_digest(&c), "{threads} sip threads vs fast serial");
    }
}
