//! End-to-end integration: generator → offline build → all nine methods
//! agree, with the paper's cost separations visible at database scale.

use topology_search::prelude::*;
use ts_biozon::{selectivity_predicate, Selectivity};
use ts_core::methods::et::{self, EtPlanKind};
use ts_core::PruneOptions;

struct Env {
    biozon: ts_biozon::Biozon,
    graph: ts_graph::DataGraph,
    schema: ts_graph::SchemaGraph,
    catalog: ts_core::Catalog,
}

fn env() -> Env {
    let biozon = biozon::generate(&biozon::BiozonConfig::default().scaled(0.15));
    let graph = graph::DataGraph::from_db(&biozon.db).expect("consistent");
    let schema = graph::SchemaGraph::from_db(&biozon.db);
    let pairs = vec![
        EsPair::new(biozon.ids.protein, biozon.ids.dna),
        EsPair::new(biozon.ids.protein, biozon.ids.interaction),
        EsPair::new(biozon.ids.protein, biozon.ids.unigene),
        EsPair::new(biozon.ids.dna, biozon.ids.interaction),
        EsPair::new(biozon.ids.dna, biozon.ids.unigene),
    ];
    let opts = ComputeOptions { es_pairs: Some(pairs), ..ComputeOptions::with_l(3) };
    let (mut catalog, _) = compute_catalog(&biozon.db, &graph, &schema, &opts);
    prune_catalog(&mut catalog, PruneOptions { threshold: 20, max_pruned: 32 });
    score_catalog(&mut catalog, &biozon::domain_scorer(&biozon.ids));
    Env { biozon, graph, schema, catalog }
}

fn ctx(e: &Env) -> QueryContext<'_> {
    QueryContext { db: &e.biozon.db, graph: &e.graph, schema: &e.schema, catalog: &e.catalog }
}

#[test]
fn all_methods_agree_across_the_selectivity_grid() {
    let e = env();
    let ctx = ctx(&e);
    for ps in Selectivity::all() {
        for is in Selectivity::all() {
            for scheme in RankScheme::all() {
                let q = TopologyQuery::new(
                    e.biozon.ids.protein,
                    selectivity_predicate(ps),
                    e.biozon.ids.interaction,
                    selectivity_predicate(is),
                    3,
                )
                .with_k(10)
                .with_scheme(scheme);

                // Non-ranked methods agree on the full result set.
                let full = Method::FullTop.eval(&ctx, &q);
                let fast = Method::FastTop.eval(&ctx, &q);
                assert_eq!(full.tid_set(), fast.tid_set(), "{ps}/{is}/{scheme} full vs fast");

                // Ranked methods agree with each other.
                let reference = Method::FullTopK.eval(&ctx, &q);
                for m in [
                    Method::FastTopK,
                    Method::FullTopKEt,
                    Method::FastTopKEt,
                    Method::FullTopKOpt,
                    Method::FastTopKOpt,
                ] {
                    let out = m.eval(&ctx, &q);
                    assert_eq!(
                        out.tid_set(),
                        reference.tid_set(),
                        "{ps}/{is}/{scheme}: {} disagrees with Full-Top-k",
                        m.name()
                    );
                }

                // Ranked top-k is a subset of the full result.
                let full_set = full.tid_set();
                for tid in reference.tid_set() {
                    assert!(full_set.contains(&tid), "{ps}/{is}/{scheme}: topk not subset");
                }
            }
        }
    }
}

#[test]
fn sql_baseline_matches_and_costs_more() {
    let e = env();
    let ctx = ctx(&e);
    let q = TopologyQuery::new(
        e.biozon.ids.protein,
        selectivity_predicate(Selectivity::Selective),
        e.biozon.ids.dna,
        Predicate::eq(1, "mRNA"),
        3,
    );
    let sql = Method::Sql.eval(&ctx, &q);
    let full = Method::FullTop.eval(&ctx, &q);
    assert_eq!(sql.tid_set(), full.tid_set());
    assert!(
        sql.work > 2 * full.work,
        "SQL baseline should be clearly costlier at scale: {} vs {}",
        sql.work,
        full.work
    );
}

#[test]
fn et_does_less_work_than_full_eval_for_small_k() {
    let e = env();
    let ctx = ctx(&e);
    let q = TopologyQuery::new(
        e.biozon.ids.protein,
        selectivity_predicate(Selectivity::Unselective),
        e.biozon.ids.interaction,
        selectivity_predicate(Selectivity::Unselective),
        3,
    )
    .with_k(5);
    let topk = Method::FullTopK.eval(&ctx, &q);
    let et = Method::FullTopKEt.eval(&ctx, &q);
    assert!(
        et.work < topk.work / 2,
        "early termination should pay off at unselective predicates: {} vs {}",
        et.work,
        topk.work
    );
}

#[test]
fn idgj_and_hdgj_plans_agree() {
    let e = env();
    let ctx = ctx(&e);
    for ps in Selectivity::all() {
        let q = TopologyQuery::new(
            e.biozon.ids.protein,
            selectivity_predicate(ps),
            e.biozon.ids.dna,
            Predicate::True,
            3,
        )
        .with_k(10);
        let i = et::eval(&ctx, &q, et::Variant::Fast, EtPlanKind::Idgj, exec::Work::new());
        let h = et::eval(&ctx, &q, et::Variant::Fast, EtPlanKind::Hdgj, exec::Work::new());
        assert_eq!(i.tid_set(), h.tid_set(), "{ps}: IDGJ vs HDGJ");
    }
}

#[test]
fn pruning_thresholds_never_change_answers() {
    let e = env();
    let q = TopologyQuery::new(
        e.biozon.ids.protein,
        selectivity_predicate(Selectivity::Medium),
        e.biozon.ids.dna,
        Predicate::True,
        3,
    );
    let mut reference: Option<Vec<u32>> = None;
    for threshold in [0u64, 5, 50, u64::MAX] {
        let mut cat = e.catalog.clone();
        prune_catalog(&mut cat, PruneOptions { threshold, max_pruned: 64 });
        let ctx =
            QueryContext { db: &e.biozon.db, graph: &e.graph, schema: &e.schema, catalog: &cat };
        let out = Method::FastTop.eval(&ctx, &q);
        match &reference {
            None => reference = Some(out.tid_set()),
            Some(r) => assert_eq!(*r, out.tid_set(), "threshold {threshold} changed the answer"),
        }
    }
}

#[test]
fn varying_k_is_a_prefix_chain() {
    let e = env();
    let ctx = ctx(&e);
    let base = TopologyQuery::new(
        e.biozon.ids.protein,
        selectivity_predicate(Selectivity::Medium),
        e.biozon.ids.interaction,
        selectivity_predicate(Selectivity::Medium),
        3,
    )
    .with_scheme(RankScheme::Domain);
    let big = Method::FastTopKEt.eval(&ctx, &base.clone().with_k(20));
    for k in [1usize, 5, 10] {
        let small = Method::FastTopKEt.eval(&ctx, &base.clone().with_k(k));
        let expected: Vec<(u32, f64)> =
            big.topologies.iter().take(k.min(big.topologies.len())).cloned().collect();
        assert_eq!(small.topologies, expected, "k={k} must be a prefix of k=20");
    }
}
