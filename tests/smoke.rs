//! Fast smoke test: the whole pipeline on a tiny instance.
//!
//! Distinct from the heavyweight `end_to_end.rs` (which runs the paper's
//! selectivity grid at database scale), this generates a
//! `BiozonConfig::small` database, builds the l = 2 catalog, and checks
//! that all nine methods of §6 return the same topology set for an
//! unconstrained Protein–DNA query. It doubles as a guard that every
//! name in `topology_search::prelude` still resolves.

use topology_search::prelude::*;

#[test]
fn all_nine_methods_agree_on_a_tiny_instance() {
    let biozon = biozon::generate(&biozon::BiozonConfig::small(42));
    let graph = graph::DataGraph::from_db(&biozon.db).expect("generator is consistent");
    let schema = graph::SchemaGraph::from_db(&biozon.db);

    let (mut catalog, stats) =
        compute_catalog(&biozon.db, &graph, &schema, &ComputeOptions::with_l(2));
    assert!(stats.topologies > 0, "tiny instance still produces topologies");
    prune_catalog(&mut catalog, PruneOptions::default());
    score_catalog(&mut catalog, &biozon::domain_scorer(&biozon.ids));

    let ctx = QueryContext { db: &biozon.db, graph: &graph, schema: &schema, catalog: &catalog };
    // k far above the topology count, so top-k truncation cannot make the
    // ranked methods' sets differ from the full result.
    let q =
        TopologyQuery::new(biozon.ids.protein, Predicate::True, biozon.ids.dna, Predicate::True, 2)
            .with_k(1_000);

    let reference: EvalOutcome = Method::FullTop.eval(&ctx, &q);
    assert!(!reference.topologies.is_empty(), "Protein-DNA must be connected");
    for m in Method::all() {
        let got = m.eval(&ctx, &q);
        assert_eq!(got.tid_set(), reference.tid_set(), "{} disagrees with Full-Top", m.name());
    }
}

#[test]
fn ranking_schemes_resolve_through_the_prelude() {
    // Compile-time prelude guard for the names the smoke path above does
    // not touch, plus a cheap runtime sanity check.
    for scheme in RankScheme::all() {
        let pair = EsPair::new(0, 1);
        assert_eq!(pair, EsPair::new(1, 0), "EsPair is unordered");
        let _ = scheme;
    }
}
