//! Storage-conformance differential suite.
//!
//! `ts-storage` replaced the row-major `Vec<Row>` table heap with a
//! columnar [`ColumnStore`] (typed buffers + string pool + null
//! bitmaps) read through borrowing [`RowRef`] views. This suite holds
//! the new layout to the old semantics the hard way: every property
//! drives a random schema and random row batch through **both** a
//! naive `Vec<Row>` reference model (the old storage, re-implemented
//! here in its simplest possible form) and the real [`Table`], then
//! compares insert outcomes, scans, filters, projections, index
//! lookups, and sorts **cell for cell**. A columnar bug — a null bit
//! off by one, a pool id aliased, a permutation missing a column —
//! shows up as a model divergence on a concrete batch, independent of
//! anything the catalog or the query methods do on top.
//!
//! Run with `PROPTEST_CASES=512` in CI's release pass for real
//! coverage; the checked-in counts are sized for debug `cargo test`.

use proptest::prelude::*;
use ts_storage::{
    ColumnDef, Predicate, Row, RowId, StorageError, Table, TableSchema, Value, ValueType,
};

/// String vocabulary: repeats force pool sharing, multi-token entries
/// exercise `Contains`, and distinct prefixes exercise ordering.
const VOCAB: [&str; 6] = ["mRNA", "EST", "alpha beta", "beta gamma delta", "x", "alpha"];

/// The reference model: the pre-columnar table, reduced to its
/// semantics — an owned row heap plus the same validation rules.
struct RowModel {
    schema: TableSchema,
    rows: Vec<Row>,
}

/// Insert outcome kinds, comparable across model and table.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Outcome {
    Ok,
    SchemaMismatch,
    DuplicateKey,
}

fn outcome_of(r: &Result<RowId, StorageError>) -> Outcome {
    match r {
        Ok(_) => Outcome::Ok,
        Err(StorageError::SchemaMismatch { .. }) => Outcome::SchemaMismatch,
        Err(StorageError::DuplicateKey { .. }) => Outcome::DuplicateKey,
        Err(e) => panic!("unexpected insert error {e:?}"),
    }
}

impl RowModel {
    fn new(schema: TableSchema) -> Self {
        RowModel { schema, rows: Vec::new() }
    }

    fn insert(&mut self, row: Row) -> Outcome {
        if row.arity() != self.schema.arity() {
            return Outcome::SchemaMismatch;
        }
        for (c, v) in row.values().enumerate() {
            if let Some(ty) = v.value_type() {
                if ty != self.schema.column_type(c) {
                    return Outcome::SchemaMismatch;
                }
            }
        }
        if let Some(pk) = self.schema.primary_key {
            if self.rows.iter().any(|r| r.get(pk) == row.get(pk)) {
                return Outcome::DuplicateKey;
            }
        }
        self.rows.push(row);
        Outcome::Ok
    }

    /// Matching row ids, in order — what both `Table::scan` and
    /// `Table::index_probe` must reproduce.
    fn matching(&self, pred: &Predicate) -> Vec<RowId> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| pred.eval(r))
            .map(|(i, _)| i as RowId)
            .collect()
    }

    /// Stable ascending sort by one column, mirroring
    /// `Table::sort_by_column`.
    fn sort_by_column(&mut self, col: usize) {
        self.rows.sort_by(|a, b| a.get(col).cmp(b.get(col)));
    }
}

/// A generated cell seed: `(kind, int value, vocab index)`. Kind 0 is
/// NULL; otherwise the column type picks which payload applies.
type CellSeed = (u8, i64, usize);

fn cell(ty: ValueType, seed: CellSeed) -> Value {
    let (kind, iv, si) = seed;
    if kind == 0 {
        return Value::Null;
    }
    match ty {
        ValueType::Int => Value::Int(iv),
        ValueType::Str => Value::str(VOCAB[si % VOCAB.len()]),
    }
}

/// Build schema + batch from raw seeds. `pk_seed == 0` puts a primary
/// key on column 0 when it is an Int column, so duplicate-key rejection
/// is exercised (int values collide by construction).
fn build_inputs(
    type_seeds: &[u8],
    pk_seed: u8,
    row_seeds: &[Vec<CellSeed>],
) -> (TableSchema, Vec<Row>) {
    let types: Vec<ValueType> =
        type_seeds.iter().map(|&t| if t == 0 { ValueType::Int } else { ValueType::Str }).collect();
    let pk = (pk_seed == 0 && types[0] == ValueType::Int).then_some(0);
    let schema = TableSchema::new(
        "C",
        types.iter().enumerate().map(|(i, &ty)| ColumnDef::new(format!("c{i}"), ty)).collect(),
        pk,
    );
    let rows: Vec<Row> = row_seeds
        .iter()
        .map(|seeds| {
            Row::new(types.iter().zip(seeds).map(|(&ty, &s)| cell(ty, s)).collect::<Vec<_>>())
        })
        .collect();
    (schema, rows)
}

/// Predicates worth checking against a schema: per-column equalities
/// (hits, misses, NULL), containment (string and — vacuously — int
/// columns), and boolean combinators over the first two.
fn predicates(schema: &TableSchema) -> Vec<Predicate> {
    let mut out = Vec::new();
    for c in 0..schema.arity() {
        match schema.column_type(c) {
            ValueType::Int => {
                for k in [-3i64, 0, 7] {
                    out.push(Predicate::eq(c, k));
                }
            }
            ValueType::Str => {
                out.push(Predicate::eq(c, VOCAB[0]));
                out.push(Predicate::eq(c, VOCAB[2]));
                out.push(Predicate::eq(c, "absent"));
            }
        }
        out.push(Predicate::Eq(c, Value::Null));
        out.push(Predicate::contains(c, "alpha"));
        out.push(Predicate::contains(c, "beta"));
    }
    if out.len() >= 2 {
        out.push(out[0].clone().and(out[1].clone()));
        out.push(out[0].clone().or(out[1].clone()));
        out.push(Predicate::Not(Box::new(out[0].clone())));
    }
    out
}

/// Every cell of `table` equals the model, through every `RowRef`
/// accessor (owned value, typed accessors, null flag).
fn assert_cells_match(table: &Table, model: &RowModel, label: &str) {
    assert_eq!(table.len(), model.rows.len(), "{label}: row count");
    for (i, expected) in model.rows.iter().enumerate() {
        let got = table.row(i as RowId);
        for c in 0..model.schema.arity() {
            let want = expected.get(c);
            assert_eq!(&got.get(c), want, "{label}: cell ({i}, {c})");
            assert_eq!(got.try_int(c), want.try_int(), "{label}: try_int ({i}, {c})");
            assert_eq!(got.try_str(c), want.try_str(), "{label}: try_str ({i}, {c})");
            assert_eq!(got.is_null(c), want.is_null(), "{label}: is_null ({i}, {c})");
        }
        // And the materialization path used at operator boundaries.
        assert_eq!(&got.to_row(), expected, "{label}: to_row({i})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Insert conformance: same outcomes (accept / schema error /
    /// duplicate key), same surviving rows cell-for-cell, and a heap
    /// size that grows with every accepted row.
    #[test]
    fn insert_outcomes_and_cells_match(
        type_seeds in proptest::collection::vec(0u8..2, 1..5),
        pk_seed in 0u8..3,
        row_seeds in proptest::collection::vec(
            proptest::collection::vec((0u8..8, -5i64..12, 0usize..6), 4), 0..40),
    ) {
        let (schema, rows) = build_inputs(&type_seeds, pk_seed, &row_seeds);
        let mut table = Table::new(schema.clone());
        let mut model = RowModel::new(schema.clone());
        let mut prev_size = table.heap_size();
        for row in rows {
            let got = outcome_of(&table.insert(row.clone()));
            let want = model.insert(row);
            prop_assert_eq!(got, want, "insert outcome");
            let size = table.heap_size();
            if got == Outcome::Ok {
                prop_assert!(size > prev_size, "heap_size must grow: {} <= {}", size, prev_size);
            } else {
                prop_assert_eq!(size, prev_size, "rejected insert must not change heap_size");
            }
            prev_size = size;
        }
        assert_cells_match(&table, &model, "after inserts");
        // Arity mismatches rejected identically too.
        let short = Row::new(vec![Value::Null]);
        if schema.arity() > 1 {
            prop_assert_eq!(outcome_of(&table.insert(short.clone())), model.insert(short));
        }
    }

    /// Scan/filter conformance: `Table::scan` over the column buffers
    /// returns exactly the model's matching ids for every predicate
    /// shape, and `eval_ref` agrees with `eval` row by row.
    #[test]
    fn scans_and_filters_match(
        type_seeds in proptest::collection::vec(0u8..2, 1..5),
        row_seeds in proptest::collection::vec(
            proptest::collection::vec((0u8..8, -5i64..12, 0usize..6), 4), 0..40),
    ) {
        let (schema, rows) = build_inputs(&type_seeds, 1, &row_seeds);
        let mut table = Table::new(schema.clone());
        let mut model = RowModel::new(schema.clone());
        for row in rows {
            table.insert(row.clone()).expect("no pk, types match");
            model.insert(row);
        }
        for pred in predicates(&schema) {
            prop_assert_eq!(table.scan(&pred), model.matching(&pred), "scan {:?}", &pred);
            for (i, row) in model.rows.iter().enumerate() {
                prop_assert_eq!(
                    pred.eval_ref(table.row(i as RowId)),
                    pred.eval(row),
                    "eval_ref vs eval at row {} for {:?}", i, &pred
                );
            }
        }
    }

    /// Projection conformance: `RowRef::project_into` (scratch reuse)
    /// and `Row::project_into` equal the model's `Row::project` for
    /// arbitrary column subsets, including repeats and reorders.
    #[test]
    fn projections_match(
        type_seeds in proptest::collection::vec(0u8..2, 2..5),
        row_seeds in proptest::collection::vec(
            proptest::collection::vec((0u8..8, -5i64..12, 0usize..6), 4), 1..25),
        cols_seed in proptest::collection::vec(0usize..4, 1..6),
    ) {
        let (schema, rows) = build_inputs(&type_seeds, 1, &row_seeds);
        let cols: Vec<usize> = cols_seed.iter().map(|&c| c % schema.arity()).collect();
        let mut table = Table::new(schema.clone());
        let mut model = RowModel::new(schema);
        for row in rows {
            table.insert(row.clone()).expect("no pk, types match");
            model.insert(row);
        }
        let mut scratch = Row::new(Vec::new());
        let mut owned_scratch = Row::new(Vec::new());
        for (i, row) in model.rows.iter().enumerate() {
            let want = row.project(&cols);
            table.row(i as RowId).project_into(&cols, &mut scratch);
            prop_assert_eq!(&scratch, &want, "RowRef::project_into row {}", i);
            row.project_into(&cols, &mut owned_scratch);
            prop_assert_eq!(&owned_scratch, &want, "Row::project_into row {}", i);
        }
    }

    /// Index conformance: bulk and row-by-row index builds both return
    /// the model's matching ids for present keys, absent keys, and
    /// NULL — on Int columns (flat fast path) and Str columns (pool
    /// path) alike.
    #[test]
    fn index_lookups_match(
        type_seeds in proptest::collection::vec(0u8..2, 1..5),
        row_seeds in proptest::collection::vec(
            proptest::collection::vec((0u8..8, -5i64..12, 0usize..6), 4), 0..40),
    ) {
        let (schema, rows) = build_inputs(&type_seeds, 1, &row_seeds);
        let mut bulk = Table::new(schema.clone());
        let mut model = RowModel::new(schema.clone());
        for row in rows {
            bulk.insert(row.clone()).expect("no pk, types match");
            model.insert(row);
        }
        let mut incremental = bulk.clone();
        for c in 0..schema.arity() {
            bulk.create_index_bulk(c);
            incremental.create_index(c);
            let mut keys: Vec<Value> = match schema.column_type(c) {
                ValueType::Int => (-5i64..12).map(Value::Int).collect(),
                ValueType::Str => VOCAB.iter().map(Value::str).collect(),
            };
            keys.push(Value::Null);
            keys.push(Value::Int(999));
            keys.push(Value::str("absent"));
            for key in keys {
                let want = model.matching(&Predicate::Eq(c, key.clone()));
                prop_assert_eq!(
                    bulk.index_probe(c, &key), &want[..], "bulk col {} key {:?}", c, &key
                );
                prop_assert_eq!(
                    incremental.index_probe(c, &key), &want[..],
                    "incremental col {} key {:?}", c, &key
                );
            }
        }
    }

    /// Sort conformance: `sort_by_column` (columnar permutation, flat
    /// Int fast path) equals the model's stable row sort, and the
    /// rebuilt indexes still answer like the model afterwards.
    #[test]
    fn sorts_match(
        type_seeds in proptest::collection::vec(0u8..2, 1..5),
        row_seeds in proptest::collection::vec(
            proptest::collection::vec((0u8..8, -5i64..12, 0usize..6), 4), 0..40),
        sort_col_seed in 0usize..4,
    ) {
        let (schema, rows) = build_inputs(&type_seeds, 1, &row_seeds);
        let sort_col = sort_col_seed % schema.arity();
        let mut table = Table::new(schema.clone());
        let mut model = RowModel::new(schema.clone());
        for row in rows {
            table.insert(row.clone()).expect("no pk, types match");
            model.insert(row);
        }
        let index_col = (sort_col + 1) % schema.arity();
        table.create_index_bulk(index_col);
        table.sort_by_column(sort_col);
        model.sort_by_column(sort_col);
        assert_cells_match(&table, &model, "after sort");
        // The secondary index was rebuilt over the permuted ids.
        let probe_keys: Vec<Value> = match schema.column_type(index_col) {
            ValueType::Int => vec![Value::Int(0), Value::Int(7), Value::Null],
            ValueType::Str => vec![Value::str(VOCAB[0]), Value::str(VOCAB[3]), Value::Null],
        };
        for key in probe_keys {
            let want = model.matching(&Predicate::Eq(index_col, key.clone()));
            prop_assert_eq!(
                table.index_probe(index_col, &key), &want[..],
                "post-sort probe col {} key {:?}", index_col, &key
            );
        }
    }

    /// The all-Int fast lane is indistinguishable from generic inserts:
    /// same outcomes (including duplicate-pk rejection), same cells,
    /// same bytes.
    #[test]
    fn insert_ints_matches_insert(
        pk_seed in 0u8..2,
        rows in proptest::collection::vec((-4i64..8, -4i64..8, -4i64..8), 0..40),
    ) {
        let schema = TableSchema::new(
            "I",
            vec![
                ColumnDef::new("a", ValueType::Int),
                ColumnDef::new("b", ValueType::Int),
                ColumnDef::new("c", ValueType::Int),
            ],
            (pk_seed == 0).then_some(0),
        );
        let mut generic = Table::new(schema.clone());
        let mut fast = Table::new(schema);
        for (a, b, c) in rows {
            let vals = [a, b, c];
            let via_generic =
                outcome_of(&generic.insert(Row::new(vals.iter().map(|&v| Value::Int(v)).collect())));
            let via_fast = outcome_of(&fast.insert_ints(&vals));
            prop_assert_eq!(via_generic, via_fast, "outcome for {:?}", vals);
        }
        prop_assert!(generic.rows().eq(fast.rows()), "cell content diverged");
        prop_assert_eq!(generic.heap_size(), fast.heap_size());
    }

    /// `heap_size` is strictly monotone in row count whatever the
    /// batch looks like — duplicate strings, nulls, fresh strings.
    #[test]
    fn heap_size_monotone_and_bounded(
        type_seeds in proptest::collection::vec(0u8..2, 1..5),
        row_seeds in proptest::collection::vec(
            proptest::collection::vec((0u8..8, -5i64..12, 0usize..6), 4), 1..60),
    ) {
        let (schema, rows) = build_inputs(&type_seeds, 1, &row_seeds);
        let mut table = Table::new(schema);
        let mut prev = table.heap_size();
        for row in rows {
            table.insert(row).expect("no pk, types match");
            let now = table.heap_size();
            prop_assert!(now > prev, "heap_size fell or stalled: {} -> {}", prev, now);
            prev = now;
        }
    }
}
