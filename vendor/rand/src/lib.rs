//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the exact API surface it consumes: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over integer and float ranges. The generator is SplitMix64 — fast,
//! deterministic, and statistically fine for synthetic data generation.
//! It does **not** reproduce the real `StdRng` stream; seeds here define
//! their own deterministic universe.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything samples through `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Sampling conveniences, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Mirror of `rand::SeedableRng`, restricted to the `seed_from_u64` entry
/// point the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let v = self.start + (self.end - self.start) * rng.next_f64() as $t;
                // Rounding in the cast/multiply can land exactly on `end`;
                // the range is half-open, so step back one ulp.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator under the `StdRng` name.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&f));
            let u = rng.gen_range(3usize..=4);
            assert!((3..=4).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.15)).count();
        assert!((1_000..2_000).contains(&hits), "15% of 10k ~ 1500, got {hits}");
    }
}
