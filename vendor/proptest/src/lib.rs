//! Offline stand-in for the `proptest` crate.
//!
//! This build environment has no crates.io access, so the workspace
//! vendors the subset of proptest its property tests consume:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`,
//!   `prop_shuffle`;
//! * range strategies over ints/floats, tuple strategies, [`Just`];
//! * [`collection::vec`] and [`option::of`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   [`ProptestConfig::with_cases`] (the `PROPTEST_CASES` environment
//!   variable overrides every configured count — CI's boosted
//!   release-mode test step relies on this);
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Inputs are generated from a deterministic per-test RNG (seeded from the
//! test name), so failures reproduce run-to-run. There is **no shrinking**
//! and no failure persistence — on failure you get the panic from the
//! first offending case; swap in the real crate for minimal
//! counterexamples.

pub mod test_runner {
    /// SplitMix64; deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(state: u64) -> Self {
            TestRng { state }
        }

        /// Seed derived from the test's name so sibling tests explore
        /// different streams but each test is stable run-to-run.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    /// `PROPTEST_CASES`, if set and parseable.
    ///
    /// Stub divergence from the real crate (where the env var only
    /// feeds `Config::default()`): here it overrides *every* case
    /// count, including `with_cases`. The workspace's suites all pin
    /// debug-friendly counts via `with_cases`, so an env-only override
    /// would never reach them — and CI's boosted release-mode test run
    /// is exactly the place where the pinned counts should be ignored.
    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: env_cases().unwrap_or(256) }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases: env_cases().unwrap_or(cases) }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy just produces a fresh value per case.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Random permutation of a generated `Vec`.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Shuffle<S> {
        pub(crate) inner: S,
    }

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.inner.generate(rng);
            // Fisher-Yates.
            for i in (1..v.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                v.swap(i, j);
            }
            v
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (self.end - self.start) * rng.next_f64() as $t;
                    // Rounding in the cast/multiply can land exactly on `end`;
                    // the range is half-open, so step back one ulp.
                    if v < self.end {
                        v
                    } else {
                        self.end.next_down().max(self.start)
                    }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length distribution for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise (matching
    /// real proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The test-definition macro. Supports the grammar this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(pat in strategy, mut other in strategy2) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };

    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };

    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = TestRng::from_seed(3);
        let s = collection::vec((0i64..100, 0u8..8), 1..60);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..60).contains(&v.len()));
            for (a, b) in v {
                assert!((0..100).contains(&a));
                assert!((0..8).contains(&b));
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng::from_seed(4);
        let s = Just((0..10u8).collect::<Vec<u8>>()).prop_shuffle();
        for _ in 0..50 {
            let mut v = s.generate(&mut rng);
            v.sort_unstable();
            assert_eq!(v, (0..10u8).collect::<Vec<u8>>());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_accepts_the_workspace_grammar(
            mut xs in collection::vec(0i32..10, 0..5),
            flag in option::of(1usize..3),
            y in 1u64..=4,
        ) {
            xs.push(0);
            prop_assert!(!xs.is_empty());
            prop_assert!((1..=4).contains(&y));
            if let Some(f) = flag {
                prop_assert_ne!(f, 0);
            }
        }
    }
}
