//! Offline stand-in for the `criterion` crate.
//!
//! Exposes the surface `crates/bench/benches/micro.rs` uses —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and really measures
//! wall-clock time (median of a few timed batches after a short warm-up),
//! printing one line per benchmark. It produces no HTML reports and does
//! no statistical outlier analysis; swap in the real crate for those.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers resolve.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are sized; only a hint in this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver. One instance is threaded through every target of a
/// `criterion_group!`.
pub struct Criterion {
    /// Per-benchmark measurement budget.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), budget: self.measurement_time };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm up and size the batch so one batch is ~1/8 of the budget.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            ((self.budget.as_nanos() / 8) / once.as_nanos().max(1)).clamp(1, 100_000) as u64;

        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                std_black_box(routine());
            }
            self.samples.push(t0.elapsed() / per_batch as u32);
            if self.samples.len() >= 64 {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 64 {
                break;
            }
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        println!(
            "{id:<40} median {:>12.3} µs  ({} samples)",
            median.as_secs_f64() * 1e6,
            self.samples.len()
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
