//! The paper's motivating scenario (§1): "how transcription factor (TF)
//! proteins are related to DNAs", contrasting the isolated path results
//! of keyword-search systems (Fig. 4) with grouped topology results
//! (Fig. 5) and their instance-level witnesses.
//!
//! ```sh
//! cargo run --release --example tf_dna
//! ```

use topology_search::prelude::*;
use ts_core::instances::retrieve_instances;
use ts_core::PruneOptions;
use ts_exec::Work;
use ts_graph::render::{motif_line, render};

fn main() {
    let biozon = biozon::generate(&biozon::BiozonConfig::default());
    let db = &biozon.db;
    let graph = graph::DataGraph::from_db(db).expect("consistent db");
    let schema = graph::SchemaGraph::from_db(db);
    let (mut catalog, _) = compute_catalog(db, &graph, &schema, &core::ComputeOptions::with_l(3));
    prune_catalog(&mut catalog, PruneOptions { threshold: 200, max_pruned: 32 });
    score_catalog(&mut catalog, &biozon::domain_scorer(&biozon.ids));
    let ctx = QueryContext { db, graph: &graph, schema: &schema, catalog: &catalog };

    // "Transcription factor" proteins: both keywords in the description.
    let tf = Predicate::contains(1, "transcription").and(Predicate::contains(1, "factor"));
    let query = TopologyQuery::new(biozon.ids.protein, tf, biozon.ids.dna, Predicate::True, 3)
        .with_k(8)
        .with_scheme(RankScheme::Domain);

    let outcome = Method::FastTop.eval(&ctx, &query);
    println!(
        "TF-protein x DNA query: {} distinct topologies ({} work units, {:.1} ms)\n",
        outcome.topologies.len(),
        outcome.work,
        outcome.wall_ms
    );

    let type_name = |t: u16| ctx.db.entity_set(t as usize).name.clone();
    let rel_name = |r: u16| ctx.db.rel_set(r as usize).name.clone();

    // Grouped, schema-level view (the paper's Fig. 5 answer), each with
    // a couple of instance-level witnesses (Fig. 4's rows, but organized).
    let mut shown = 0;
    for (tid, _) in &outcome.topologies {
        let meta = catalog.meta(*tid);
        if meta.graph.node_count() < 3 {
            continue; // skip the trivial direct-edge topology in the demo
        }
        println!("topology T{tid} (freq {} across the whole database):", meta.freq);
        print!("{}", render(&meta.graph, &type_name, &rel_name));
        let work = Work::new();
        let instances = retrieve_instances(&ctx, *tid, 2, &work);
        for inst in &instances {
            println!(
                "  instance: pair ({}, {}) over entities {:?}",
                inst.e1, inst.e2, inst.entities
            );
        }
        println!();
        shown += 1;
        if shown == 4 {
            break;
        }
    }
    if shown == 0 {
        println!("(no multi-hop TF topologies at this scale; rerun with a bigger config)");
    }

    // The self-regulation motif of Fig. 2 (third graph): a protein that
    // is encoded by a DNA and also interacts with it.
    let self_reg = catalog
        .metas()
        .iter()
        .filter(|m| {
            m.espair == EsPair::new(biozon.ids.protein, biozon.ids.dna)
                && m.graph.edges.iter().any(|&(_, _, r)| r == biozon.ids.interacts_p)
                && m.graph.edges.iter().any(|&(_, _, r)| r == biozon.ids.encodes)
        })
        .count();
    println!("catalog-wide: {self_reg} P-D topologies combine 'encodes' with an interaction —");
    println!("the shape the paper calls a substantial finding (self-regulating TFs, Fig. 2).");
    println!("\n{}", motif_line(&catalog.metas()[0].graph, &type_name, &rel_name));
}
