//! Comparing topologies across multiple queries — the paper's §8 future
//! work ("primitives for comparing topologies across multiple queries"),
//! implemented in `ts_core::compare`.
//!
//! The scenario: which relationship structures connect *kinase* proteins
//! to DNAs but never *receptor* proteins (and vice versa)? Topologies are
//! matched by canonical code, so the comparison also works across
//! catalogs (different path limits, with/without weak policies).
//!
//! ```sh
//! cargo run --release --example compare_queries
//! ```

use topology_search::prelude::*;
use ts_core::compare::{diff, ResultView};
use ts_core::PruneOptions;
use ts_graph::render::motif_line;

fn main() {
    let biozon = biozon::generate(&biozon::BiozonConfig::default());
    let db = &biozon.db;
    let graph = graph::DataGraph::from_db(db).expect("consistent db");
    let schema = graph::SchemaGraph::from_db(db);
    let (mut catalog, _) = compute_catalog(db, &graph, &schema, &core::ComputeOptions::with_l(3));
    prune_catalog(&mut catalog, PruneOptions { threshold: 200, max_pruned: 32 });
    score_catalog(&mut catalog, &biozon::domain_scorer(&biozon.ids));
    let ctx = QueryContext { db, graph: &graph, schema: &schema, catalog: &catalog };

    let run = |keyword: &str| {
        let q = TopologyQuery::new(
            biozon.ids.protein,
            Predicate::contains(1, keyword),
            biozon.ids.dna,
            Predicate::True,
            3,
        );
        Method::FastTop.eval(&ctx, &q)
    };
    let kinase = run("kinase");
    let receptor = run("receptor");

    let d = diff(
        &ResultView::new(&catalog, kinase.tids()),
        &ResultView::new(&catalog, receptor.tids()),
    );

    let type_name = |t: u16| ctx.db.entity_set(t as usize).name.clone();
    let rel_name = |r: u16| ctx.db.rel_set(r as usize).name.clone();

    println!(
        "kinase-DNA: {} topologies; receptor-DNA: {} topologies; jaccard {:.2}\n",
        kinase.topologies.len(),
        receptor.topologies.len(),
        d.jaccard()
    );
    println!("structures relating kinases but never receptors ({}):", d.only_left.len());
    for tid in d.only_left.iter().take(5) {
        let meta = catalog.meta(*tid);
        println!("  T{tid:<5} {}", motif_line(&meta.graph, &type_name, &rel_name));
    }
    println!("\nstructures relating receptors but never kinases ({}):", d.only_right.len());
    for tid in d.only_right.iter().take(5) {
        let meta = catalog.meta(*tid);
        println!("  T{tid:<5} {}", motif_line(&meta.graph, &type_name, &rel_name));
    }
    println!("\nshared structures ({}), with database-wide frequencies:", d.common.len());
    for c in d.common.iter().take(5) {
        let meta = catalog.meta(c.left);
        println!(
            "  T{:<5} freq {:>5}  {}",
            c.left,
            meta.freq,
            motif_line(&meta.graph, &type_name, &rel_name)
        );
    }
}
