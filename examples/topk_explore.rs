//! Ranked exploration: the three ranking schemes (Freq / Domain / Rare)
//! side by side, and all nine evaluation methods racing on one query —
//! a single cell of the paper's Table 2.
//!
//! ```sh
//! cargo run --release --example topk_explore
//! ```

use topology_search::prelude::*;
use ts_biozon::{selectivity_predicate, Selectivity};
use ts_core::PruneOptions;
use ts_graph::render::motif_line;

fn main() {
    let biozon = biozon::generate(&biozon::BiozonConfig::default());
    let db = &biozon.db;
    let graph = graph::DataGraph::from_db(db).expect("consistent db");
    let schema = graph::SchemaGraph::from_db(db);
    let (mut catalog, _) = compute_catalog(db, &graph, &schema, &core::ComputeOptions::with_l(3));
    prune_catalog(&mut catalog, PruneOptions { threshold: 150, max_pruned: 32 });
    score_catalog(&mut catalog, &biozon::domain_scorer(&biozon.ids));
    let ctx = QueryContext { db, graph: &graph, schema: &schema, catalog: &catalog };

    // Protein (medium selectivity) x Interaction (medium) — the center
    // cell of Table 2's grid.
    let base = TopologyQuery::new(
        biozon.ids.protein,
        selectivity_predicate(Selectivity::Medium),
        biozon.ids.interaction,
        selectivity_predicate(Selectivity::Medium),
        3,
    )
    .with_k(10);

    let type_name = |t: u16| ctx.db.entity_set(t as usize).name.clone();
    let rel_name = |r: u16| ctx.db.rel_set(r as usize).name.clone();

    // Part 1: what each ranking scheme surfaces.
    for scheme in RankScheme::all() {
        let q = base.clone().with_scheme(scheme);
        let out = Method::FastTopK.eval(&ctx, &q);
        println!("top-5 by {scheme}:");
        for (tid, score) in out.topologies.iter().take(5) {
            let meta = catalog.meta(*tid);
            println!(
                "  T{tid:<4} score {score:>9.3} freq {:>5}  {}",
                meta.freq,
                motif_line(&meta.graph, &type_name, &rel_name)
            );
        }
        println!();
    }

    // Part 2: the nine methods on the Freq scheme.
    println!("{:<16} {:>10} {:>12}  result", "method", "wall ms", "work");
    let q = base.with_scheme(RankScheme::Freq);
    let mut reference: Option<Vec<u32>> = None;
    for method in Method::all() {
        let out = method.eval(&ctx, &q);
        let tids = out.tid_set();
        let marker = match (&reference, method.is_topk()) {
            (None, true) => {
                reference = Some(tids.clone());
                "reference"
            }
            (Some(r), true) => {
                if *r == tids {
                    "= reference"
                } else {
                    "DIFFERS!"
                }
            }
            _ => "(all results)",
        };
        println!(
            "{:<16} {:>10.2} {:>12}  {} topologies {}",
            method.name(),
            out.wall_ms,
            out.work,
            out.topologies.len(),
            marker
        );
    }
}
