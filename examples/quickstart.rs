//! Quickstart: generate a Biozon-shaped database, build the topology
//! catalog offline, and ask how proteins relate to DNAs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use topology_search::prelude::*;
use ts_core::PruneOptions;
use ts_graph::render::motif_line;

fn main() {
    // 1. Synthetic Biozon (deterministic in the seed).
    let biozon = biozon::generate(&biozon::BiozonConfig::small(42));
    let db = &biozon.db;
    println!(
        "generated Biozon: {} proteins, {} DNAs, {} relationship tables",
        db.table_by_name("Protein").unwrap().len(),
        db.table_by_name("DNA").unwrap().len(),
        db.rel_sets().len()
    );

    // 2. Offline phase (Fig. 10 of the paper): compute AllTops, prune the
    //    frequent simple topologies, score.
    let graph = graph::DataGraph::from_db(db).expect("consistent db");
    let schema = graph::SchemaGraph::from_db(db);
    let (mut catalog, stats) =
        compute_catalog(db, &graph, &schema, &core::ComputeOptions::with_l(3));
    println!(
        "offline build: {} connected pairs, {} paths, {} topologies in {:.0} ms",
        stats.pairs, stats.paths, stats.topologies, stats.millis
    );
    let report = prune_catalog(&mut catalog, PruneOptions { threshold: 50, max_pruned: 32 });
    println!(
        "pruning: {} topologies pruned; AllTops {} rows -> LeftTops {} rows + ExcpTops {} rows",
        report.pruned.len(),
        report.alltops_rows,
        report.lefttops_rows,
        report.excptops_rows
    );
    score_catalog(&mut catalog, &biozon::domain_scorer(&biozon.ids));

    // 3. Online phase: the paper's flagship query shape — how are
    //    proteins related to DNAs? (Example 2.1 uses desc.ct('enzyme')
    //    and type = 'mRNA'.)
    let ctx = QueryContext { db, graph: &graph, schema: &schema, catalog: &catalog };
    let query = TopologyQuery::new(
        biozon.ids.protein,
        Predicate::contains(1, "kinase"),
        biozon.ids.dna,
        Predicate::eq(1, "mRNA"),
        3,
    )
    .with_k(5)
    .with_scheme(RankScheme::Domain);

    let outcome = Method::FastTopKOpt.eval(&ctx, &query);
    println!(
        "\ntop-{} topologies by Domain score ({}; {:.1} ms, {} work units):",
        query.k, outcome.detail, outcome.wall_ms, outcome.work
    );
    let type_name = |t: u16| ctx.db.entity_set(t as usize).name.clone();
    let rel_name = |r: u16| ctx.db.rel_set(r as usize).name.clone();
    for (tid, score) in &outcome.topologies {
        let meta = catalog.meta(*tid);
        println!(
            "  T{tid:<4} score {score:>8.2}  freq {:>5}  {}",
            meta.freq,
            motif_line(&meta.graph, &type_name, &rel_name)
        );
    }
}
