//! Weak relationships at l = 4 (§6.2.3 / Fig. 17 / Appendix B): how the
//! P-D-P-U-D walk dilutes meaningful topologies and inflates the offline
//! build, and how the domain-knowledge pruning policy fixes both.
//!
//! ```sh
//! cargo run --release --example weak_relationships
//! ```

use topology_search::prelude::*;
use ts_biozon::weak_policy_l4;
use ts_core::ComputeOptions;

fn main() {
    // Smaller scale: l = 4 path enumeration is intrinsically expensive —
    // that is the point of this experiment.
    let biozon = biozon::generate(&biozon::BiozonConfig::default().scaled(0.35));
    let db = &biozon.db;
    let graph = graph::DataGraph::from_db(db).expect("consistent db");
    let schema = graph::SchemaGraph::from_db(db);
    let pd = EsPair::new(biozon.ids.protein, biozon.ids.dna);

    // Build 1: l = 4, no domain knowledge.
    let opts_naive = ComputeOptions { es_pairs: Some(vec![pd]), ..ComputeOptions::with_l(4) };
    let (cat_naive, stats_naive) = compute_catalog(db, &graph, &schema, &opts_naive);

    // Build 2: l = 4 with the Appendix-B weak-relationship policy.
    let opts_pruned = ComputeOptions {
        es_pairs: Some(vec![pd]),
        weak_policy: Some(weak_policy_l4(&biozon.ids)),
        ..ComputeOptions::with_l(4)
    };
    let (cat_pruned, stats_pruned) = compute_catalog(db, &graph, &schema, &opts_pruned);

    println!("l = 4 Protein-DNA catalog, without vs with weak-relationship pruning:\n");
    println!("{:<28} {:>14} {:>14}", "", "naive l=4", "weak-pruned l=4");
    println!("{:<28} {:>14} {:>14}", "instance paths", stats_naive.paths, stats_pruned.paths);
    println!(
        "{:<28} {:>14} {:>14}",
        "paths dropped as weak", stats_naive.weak_paths_dropped, stats_pruned.weak_paths_dropped
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "distinct P-D topologies",
        cat_naive.topologies_for(pd).len(),
        cat_pruned.topologies_for(pd).len()
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "pairs with truncated product", stats_naive.truncated_pairs, stats_pruned.truncated_pairs
    );
    println!(
        "{:<28} {:>14.0} {:>14.0}",
        "build time (ms)", stats_naive.millis, stats_pruned.millis
    );

    // The dilution effect of Fig. 17: count naive topologies that embed
    // the weak P-D-P-U-D walk — every one of them is a "split" of a
    // simpler meaningful topology.
    let weak_rels = [biozon.ids.uni_contains];
    let diluted = cat_naive
        .topologies_for(pd)
        .iter()
        .filter(|&&tid| {
            let g = &cat_naive.meta(tid).graph;
            g.node_count() >= 5 && g.edges.iter().any(|&(_, _, r)| weak_rels.contains(&r))
        })
        .count();
    println!(
        "\n{} of the naive catalog's P-D topologies are >=5-node shapes involving \
         unigene containment — the Fig. 17 dilution the policy removes.",
        diluted
    );
}
