//! # topology-search
//!
//! A from-scratch reproduction of *"Topology Search over Biological
//! Databases"* (Guo, Shanmugasundaram, Yona): data topologies — schema-
//! level summaries of every way two entities relate at the instance
//! level — and the full family of evaluation strategies the paper
//! develops around them (`Full-Top`, `Fast-Top` with pruning + exception
//! tables, top-k variants, early-termination plans built on Distinct
//! Group Join operators, and a cost-based optimizer).
//!
//! This facade re-exports the workspace crates under stable paths:
//!
//! * [`storage`] — in-memory relational substrate (tables, indexes,
//!   predicates, statistics);
//! * [`graph`] — data/schema graphs, simple-path enumeration, exact
//!   labeled-graph canonicalization;
//! * [`exec`] — Volcano engine with the DGJ operator family;
//! * [`optimizer`] — the Theorem-1 cost model and a System-R planner
//!   with the early-termination interesting property;
//! * [`core`] — topologies, the catalog (AllTops / LeftTops / ExcpTops /
//!   TopInfo), pruning, scoring, and the nine query methods;
//! * [`biozon`] — the seeded synthetic Biozon generator and the paper's
//!   experiment workloads.
//!
//! ## Quickstart
//!
//! ```
//! use topology_search::prelude::*;
//!
//! // Generate a small Biozon-shaped database.
//! let biozon = biozon::generate(&biozon::BiozonConfig::small(42));
//! let graph = graph::DataGraph::from_db(&biozon.db).unwrap();
//! let schema = graph::SchemaGraph::from_db(&biozon.db);
//!
//! // Offline: compute the topology catalog at l = 2, prune, score.
//! let (mut catalog, _stats) =
//!     core::compute_catalog(&biozon.db, &graph, &schema, &core::ComputeOptions::with_l(2));
//! core::prune_catalog(&mut catalog, core::PruneOptions::default());
//! core::score_catalog(&mut catalog, &biozon::domain_scorer(&biozon.ids));
//!
//! // Online: how are proteins related to DNAs?
//! let ctx = core::QueryContext {
//!     db: &biozon.db,
//!     graph: &graph,
//!     schema: &schema,
//!     catalog: &catalog,
//! };
//! let query = core::TopologyQuery::new(
//!     biozon.ids.protein,
//!     storage::Predicate::True,
//!     biozon.ids.dna,
//!     storage::Predicate::True,
//!     2,
//! );
//! let outcome = core::Method::FastTopKOpt.eval(&ctx, &query);
//! assert!(!outcome.topologies.is_empty());
//! ```

#![forbid(unsafe_code)]

/// In-memory relational substrate.
pub use ts_storage as storage;

/// Graph substrate: paths and isomorphism.
pub use ts_graph as graph;

/// Volcano execution engine with DGJ operators.
pub use ts_exec as exec;

/// Cost model and System-R planner.
pub use ts_optimizer as optimizer;

/// Topologies, catalog, and the nine evaluation methods.
pub use ts_core as core;

/// Synthetic Biozon generator and workloads.
pub use ts_biozon as biozon;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::{biozon, core, exec, graph, optimizer, storage};
    pub use ts_core::{
        compute_catalog, prune_catalog, score_catalog, Catalog, ComputeOptions, EsPair,
        EvalOutcome, Method, PruneOptions, QueryContext, RankScheme, TopologyQuery,
    };
    pub use ts_storage::{Predicate, RowRef};
}
